// Climate demonstrates the 2.5D use case from the paper's introduction
// end to end. Ocean meshes carry a node weight (the number of vertical
// layers below each surface point); load balance must hold for the
// *weighted* sum, not the point count. The example (1) partitions a
// synthetic ocean mesh with Geographer and with Hilbert-SFC and
// compares weighted balance and communication volume, (2) lifts the
// weighted 2D partition onto the extruded 3D mesh, and (3) runs the
// dynamic part of the scenario — the ocean model's load drifts between
// timesteps — through a streaming Session: one ingest, then a warm
// repartition per step that moves only a small fraction of the weight.
package main

import (
	"fmt"
	"log"
	"math"

	"geographer"
)

func main() {
	m, err := geographer.GenerateMesh(geographer.MeshClimate, 30000, 7)
	if err != nil {
		log.Fatal(err)
	}
	totalW := 0.0
	for _, w := range m.Weights {
		totalW += w
	}
	fmt.Printf("ocean mesh: %d surface points, %.0f weighted 3D cells\n", m.N(), totalW)

	const k = 32
	for _, method := range []string{geographer.MethodGeographer, geographer.MethodHSFC} {
		blocks, err := geographer.Partition(m.Coords, m.Dim, m.Weights, geographer.Options{
			K: k, Method: method, Strict: method == geographer.MethodGeographer,
		})
		if err != nil {
			log.Fatal(err)
		}
		q, err := geographer.Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, m.Weights, blocks, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s weighted imbalance %.4f | totCommVol %6d | cut %6d | harmDiam %.1f\n",
			method, q.Imbalance, q.TotalCommVol, q.EdgeCut, q.HarmDiameter)
	}
	fmt.Println("\nGeographer holds the weighted ε=3% constraint while cutting less; SFC")
	fmt.Println("balances perfectly along the curve but pays with wrinkled boundaries.")

	// The 2.5D equivalence (paper §1): lifting the weighted 2D partition
	// column-wise onto the extruded 3D mesh preserves perfect load
	// correspondence — partitioning the surface IS partitioning the
	// volume.
	surface, err := geographer.GenerateMesh(geographer.MeshClimate, 5000, 7)
	if err != nil {
		log.Fatal(err)
	}
	blocks, err := geographer.Partition(surface.Coords, surface.Dim, surface.Weights,
		geographer.Options{K: 8, Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	vol, lifted, err := geographer.Extrude(surface, blocks, 0.005)
	if err != nil {
		log.Fatal(err)
	}
	q3, err := geographer.Evaluate(vol.XAdj, vol.Adj, vol.Coords, vol.Dim, nil, lifted, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextruded 3D mesh: %d cells from %d surface points\n", vol.N(), surface.N())
	fmt.Printf("lifted 3D partition imbalance: %.4f (inherits the weighted 2D balance)\n", q3.Imbalance)

	// The dynamic scenario (§1): the simulation repartitions as its load
	// evolves. A Session keeps the distributed state resident across
	// timesteps — the mesh is scattered and ingested once, and each step
	// is an in-place weight delta plus one warm k-means phase, instead
	// of the loop of full one-shot pipelines it replaces.
	s, err := geographer.NewSession(m.Coords, m.Dim, m.Weights, geographer.Options{K: k})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Partition(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstreaming timesteps (layer counts drift like a moving front):")
	for t := 1; t <= 4; t++ {
		w := make([]float64, m.N())
		for i := range w {
			x := m.Coords[i*m.Dim]
			y := m.Coords[i*m.Dim+1]
			w[i] = m.Weights[i] * (1 + 0.4*math.Sin(0.08*x+0.05*y+0.9*float64(t)))
		}
		if err := s.UpdateWeights(w); err != nil {
			log.Fatal(err)
		}
		res, err := s.Repartition()
		if err != nil {
			log.Fatal(err)
		}
		q, err := geographer.Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, w, res.Blocks, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %d: imbalance %.4f | cut %6d | migrated %.1f%% of the weight\n",
			t, q.Imbalance, q.EdgeCut, 100*res.MigratedWeight/res.TotalWeight)
	}
	fmt.Println("the session pays the scatter/ingest once; every step above is warm.")
}
