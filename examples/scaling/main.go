// Scaling: a miniature of the paper's weak-scaling experiment (Figure
// 3a). The Delaunay series grows with p = k while the per-process size
// stays fixed; the modeled parallel time shows the scaling *shape*: the
// recursive bisection methods pay one migration round per level (log k
// rounds), MultiJagged only d rounds, HSFC one sort, and Geographer a
// handful of k-means iterations.
package main

import (
	"fmt"
	"log"
	"os"

	"geographer/internal/experiments"
)

func main() {
	sc := experiments.DefaultScale()
	sc.PerRank = 2000
	sc.WeakMaxP = 32
	if len(os.Args) > 1 && os.Args[1] == "quick" {
		sc = experiments.QuickScale()
	}
	if _, err := experiments.Fig3a(os.Stdout, sc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNote: wall[s] is bound by this host's cores; modeled[s] is the α-β")
	fmt.Println("parallel-time model that recovers the paper's scaling shape (Fig. 3a).")
}
