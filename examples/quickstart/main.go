// Quickstart demonstrates the smallest end-to-end use of the public
// API: generate a benchmark mesh, partition it into balanced blocks
// with Geographer's balanced k-means, evaluate the paper's quality
// metrics — and then, when the load evolves over timesteps, repartition
// through a Session (ingest once, warm steps with in-place weight
// updates) instead of re-running the full pipeline.
package main

import (
	"fmt"
	"log"
	"math"

	"geographer"
)

func main() {
	// 1. A benchmark mesh: Delaunay triangulation of 20 000 random points.
	m, err := geographer.GenerateMesh(geographer.MeshDelaunay2D, 20000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %s: %d vertices\n", m.Name, m.N())

	// 2. Partition into 16 balanced blocks (ε = 3%, the paper's setting).
	blocks, err := geographer.Partition(m.Coords, m.Dim, m.Weights, geographer.Options{K: 16})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Evaluate with the paper's graph metrics.
	q, err := geographer.Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, m.Weights, blocks, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge cut:            %d\n", q.EdgeCut)
	fmt.Printf("total comm volume:   %d\n", q.TotalCommVol)
	fmt.Printf("max comm volume:     %d\n", q.MaxCommVol)
	fmt.Printf("imbalance:           %.4f (ε = 0.03)\n", q.Imbalance)
	fmt.Printf("harm. mean diameter: %.1f\n", q.HarmDiameter)

	// 4. How much SpMV communication does this partition cost?
	modeled, _, err := geographer.SpMVCommTime(m.XAdj, m.Adj, blocks, 16, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SpMV comm (modeled): %.4g s/iteration\n", modeled)

	// 5. When the simulation's load evolves and the mesh must be
	// repartitioned every timestep, keep a Session instead of looping
	// over one-shot calls: the points are ingested once, each step only
	// applies a weight delta and runs the warm k-means, and far less
	// weight migrates than a fresh partition would move.
	s, err := geographer.NewSession(m.Coords, m.Dim, m.Weights, geographer.Options{K: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if err := s.SetPartition(blocks); err != nil { // warm-start from step 2's result
		log.Fatal(err)
	}
	fmt.Println("\nstreaming timesteps (weights drift, session repartitions):")
	for t := 1; t <= 3; t++ {
		w := make([]float64, m.N())
		for i := range w {
			x := m.Coords[i*m.Dim]
			w[i] = 1 + 0.4*math.Sin(0.1*x+float64(t)) // evolving load
		}
		if err := s.UpdateWeights(w); err != nil {
			log.Fatal(err)
		}
		res, err := s.Repartition()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  step %d: %.1f%% of the weight migrated (%d points)\n",
			t, 100*res.MigratedWeight/res.TotalWeight, res.MigratedPoints)
	}
}
