// Quickstart: partition a Delaunay mesh of random points into balanced
// blocks with Geographer's balanced k-means and print the quality
// metrics. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"geographer"
)

func main() {
	// 1. A benchmark mesh: Delaunay triangulation of 20 000 random points.
	m, err := geographer.GenerateMesh(geographer.MeshDelaunay2D, 20000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %s: %d vertices\n", m.Name, m.N())

	// 2. Partition into 16 balanced blocks (ε = 3%, the paper's setting).
	blocks, err := geographer.Partition(m.Coords, m.Dim, m.Weights, geographer.Options{K: 16})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Evaluate with the paper's graph metrics.
	q, err := geographer.Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, m.Weights, blocks, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge cut:            %d\n", q.EdgeCut)
	fmt.Printf("total comm volume:   %d\n", q.TotalCommVol)
	fmt.Printf("max comm volume:     %d\n", q.MaxCommVol)
	fmt.Printf("imbalance:           %.4f (ε = 0.03)\n", q.Imbalance)
	fmt.Printf("harm. mean diameter: %.1f\n", q.HarmDiameter)

	// 4. How much SpMV communication does this partition cost?
	modeled, _, err := geographer.SpMVCommTime(m.XAdj, m.Adj, blocks, 16, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SpMV comm (modeled): %.4g s/iteration\n", modeled)
}
