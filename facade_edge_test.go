package geographer

import (
	"math"
	"testing"
)

var allMethods = []string{MethodGeographer, MethodRCB, MethodRIB, MethodMultiJagged, MethodHSFC}

// checkAssignment verifies the basic partition contract: one block id
// in [0, k) per point.
func checkAssignment(t *testing.T, label string, blocks []int32, n, k int) {
	t.Helper()
	if len(blocks) != n {
		t.Fatalf("%s: %d assignments for %d points", label, len(blocks), n)
	}
	for i, b := range blocks {
		if b < 0 || int(b) >= k {
			t.Fatalf("%s: point %d in invalid block %d (k=%d)", label, i, b, k)
		}
	}
}

// TestDegenerateInputsAllMethods pins the currently-green edge cases of
// all five partitioners so they stay green: more blocks than points,
// more simulated ranks than points (empty ranks), all points
// coincident, and a single point.
func TestDegenerateInputsAllMethods(t *testing.T) {
	small := randomCoords(5, 2, 1)
	six := randomCoords(6, 2, 2)
	coincident := make([]float64, 20) // 10 identical 2D points at the origin
	single := []float64{0.5, 0.5}

	for _, m := range allMethods {
		t.Run(m, func(t *testing.T) {
			blocks, err := Partition(small, 2, nil, Options{K: 8, Method: m})
			if err != nil {
				t.Fatalf("k > n: %v", err)
			}
			checkAssignment(t, "k > n", blocks, 5, 8)

			blocks, err = Partition(six, 2, nil, Options{K: 2, Method: m, Processes: 16})
			if err != nil {
				t.Fatalf("Processes > n: %v", err)
			}
			checkAssignment(t, "Processes > n", blocks, 6, 2)

			blocks, err = Partition(coincident, 2, nil, Options{K: 3, Method: m})
			if err != nil {
				t.Fatalf("coincident points: %v", err)
			}
			checkAssignment(t, "coincident points", blocks, 10, 3)

			for _, k := range []int{1, 2} {
				blocks, err = Partition(single, 2, nil, Options{K: k, Method: m})
				if err != nil {
					t.Fatalf("single point k=%d: %v", k, err)
				}
				checkAssignment(t, "single point", blocks, 1, k)
			}
		})
	}
}

// TestEvaluateRejectsOutOfRangeBlocks is the regression test for the
// index-out-of-range panic in metrics.CommVolumes: an invalid block id
// in part must surface as an error from the facade, never a crash.
func TestEvaluateRejectsOutOfRangeBlocks(t *testing.T) {
	m, err := GenerateMesh(MeshDelaunay2D, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	part := make([]int32, m.N())
	part[10] = 99 // >= k
	if _, err := Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, m.Weights, part, 4); err == nil {
		t.Error("block id 99 with k=4 accepted")
	}
	part[10] = -2
	if _, err := Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, m.Weights, part, 4); err == nil {
		t.Error("block id -2 accepted")
	}
	part[10] = 0
	if _, err := Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, m.Weights, part, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestSpMVCommTimeRejectsOutOfRangeBlocks: same regression for the SpMV
// benchmark facade.
func TestSpMVCommTimeRejectsOutOfRangeBlocks(t *testing.T) {
	m, err := GenerateMesh(MeshDelaunay2D, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	part := make([]int32, m.N())
	part[0] = 7
	if _, _, err := SpMVCommTime(m.XAdj, m.Adj, part, 4, 2); err == nil {
		t.Error("block id 7 with k=4 accepted")
	}
	part[0] = -1
	if _, _, err := SpMVCommTime(m.XAdj, m.Adj, part, 4, 2); err == nil {
		t.Error("block id -1 accepted")
	}
	part[0] = 0
	if _, _, err := SpMVCommTime(m.XAdj, m.Adj, part, 0, 2); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestOptionsValidation is the regression test for the silent
// misconfigurations: a negative Epsilon used to make every balance
// round futile, and bad TargetFractions silently skewed the targets.
func TestOptionsValidation(t *testing.T) {
	coords := randomCoords(200, 2, 5)
	cases := []struct {
		name string
		opts Options
	}{
		{"negative epsilon", Options{K: 4, Epsilon: -0.01}},
		{"negative processes", Options{K: 4, Processes: -2}},
		{"fraction length", Options{K: 4, TargetFractions: []float64{0.5, 0.5}}},
		{"negative fraction", Options{K: 2, TargetFractions: []float64{1.5, -0.5}}},
		{"zero fraction", Options{K: 2, TargetFractions: []float64{1, 0}}},
		{"fractions not summing to 1", Options{K: 2, TargetFractions: []float64{0.9, 0.3}}},
		{"NaN fraction", Options{K: 2, TargetFractions: []float64{math.NaN(), 0.5}}},
	}
	for _, tc := range cases {
		if _, err := Partition(coords, 2, nil, tc.opts); err == nil {
			t.Errorf("%s accepted by Partition", tc.name)
		}
		prev := make([]int32, 200)
		if _, err := Repartition(coords, 2, nil, prev, tc.opts); err == nil {
			t.Errorf("%s accepted by Repartition", tc.name)
		}
	}
	// The validation must not reject valid settings.
	if _, err := Partition(coords, 2, nil, Options{K: 2, TargetFractions: []float64{0.7, 0.3}}); err != nil {
		t.Errorf("valid fractions rejected: %v", err)
	}
}

// TestRepartitionFacade drives the public warm-start API end to end on
// a mesh with evolving weights.
func TestRepartitionFacade(t *testing.T) {
	m, err := GenerateMesh(MeshClimate, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := Partition(m.Coords, m.Dim, m.Weights, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}

	// The load evolves: perturb the layer weights and repartition warm.
	perturbed := make([]float64, len(m.Weights))
	for i, w := range m.Weights {
		perturbed[i] = w * (1 + 0.3*math.Sin(m.Coords[2*i]*8))
	}
	res, err := Repartition(m.Coords, m.Dim, perturbed, blocks, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkAssignment(t, "repartition", res.Blocks, m.N(), 8)
	if res.TotalWeight <= 0 {
		t.Errorf("total weight %g", res.TotalWeight)
	}
	if res.MigratedWeight < 0 || res.MigratedWeight > res.TotalWeight {
		t.Errorf("migrated weight %g of %g", res.MigratedWeight, res.TotalWeight)
	}
	if frac := res.MigratedWeight / res.TotalWeight; frac > 0.5 {
		t.Errorf("warm start migrated %.0f%% of the weight", 100*frac)
	}
	q, err := Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, perturbed, res.Blocks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Imbalance > 0.2 {
		t.Errorf("imbalance %.4f", q.Imbalance)
	}

	// Determinism across Processes/Workers: same input + same prevAssign
	// produce a bit-identical partition.
	for _, procs := range []int{1, 3, 8} {
		for _, workers := range []int{1, 2} {
			again, err := Repartition(m.Coords, m.Dim, perturbed, blocks, Options{K: 8, Processes: procs, Workers: workers})
			if err != nil {
				t.Fatalf("p=%d w=%d: %v", procs, workers, err)
			}
			for i := range res.Blocks {
				if res.Blocks[i] != again.Blocks[i] {
					t.Fatalf("p=%d w=%d: diverges at point %d", procs, workers, i)
				}
			}
		}
	}

	// Error paths.
	if _, err := Repartition(m.Coords, m.Dim, perturbed, blocks[:10], Options{K: 8}); err == nil {
		t.Error("short prevAssign accepted")
	}
	bad := append([]int32(nil), blocks...)
	bad[0] = 42
	if _, err := Repartition(m.Coords, m.Dim, perturbed, bad, Options{K: 8}); err == nil {
		t.Error("out-of-range prevAssign accepted")
	}
	if _, err := Repartition(m.Coords, m.Dim, perturbed, blocks, Options{K: 8, Method: MethodRCB}); err == nil {
		t.Error("non-geographer warm start accepted")
	}
}
