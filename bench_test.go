package geographer

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5), at reduced QuickScale sizes so `go test
// -bench=.` finishes in minutes. The full-scale runs are driven by
// cmd/runexp; EXPERIMENTS.md records paper-vs-measured for each.

import (
	"io"
	"testing"

	"geographer/internal/experiments"
)

// BenchmarkTable1LargeGraphs regenerates Table 1 (large graphs,
// k = p = 1024 in the paper, scaled down here).
func BenchmarkTable1LargeGraphs(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2MediumGraphs regenerates Table 2 (small/medium graphs,
// k = p = 64 in the paper).
func BenchmarkTable2MediumGraphs(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Partitioners regenerates Figure 1 (visual comparison of
// the five tools on a hugetric-style mesh, k = 8).
func BenchmarkFig1Partitioners(b *testing.B) {
	sc := experiments.QuickScale()
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(dir, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Classes regenerates Figure 2 (aggregated metric ratios per
// instance class).
func BenchmarkFig2Classes(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3aWeakScaling regenerates Figure 3a (weak scaling over the
// Delaunay series with p = k doubling).
func BenchmarkFig3aWeakScaling(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3a(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3bStrongScaling regenerates Figure 3b (strong scaling on
// the largest Delaunay graph).
func BenchmarkFig3bStrongScaling(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3b(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4RunningTimes regenerates Figure 4 (running time of every
// tool on every registry graph at fixed points-per-block).
func BenchmarkFig4RunningTimes(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComponents regenerates the §5.3.2 phase breakdown of
// Geographer's running time.
func BenchmarkComponents(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Components(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation measures the §4 design choices (Hamerly bounds, bbox
// pruning, erosion, sampled init, SFC bootstrap) individually.
func BenchmarkAblation(b *testing.B) {
	sc := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionFacade measures the end-to-end facade on a mid-size
// instance (the README quick-start path).
func BenchmarkPartitionFacade(b *testing.B) {
	m, err := GenerateMesh(MeshRefined, 20000, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(m.Coords, m.Dim, m.Weights, Options{K: 16}); err != nil {
			b.Fatal(err)
		}
	}
}
