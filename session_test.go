package geographer_test

import (
	"math"
	"testing"

	"geographer"
)

// perturb builds strictly positive weights at timestep t (the stream
// experiment's spatial-wave shape) for a 2D mesh.
func perturb(m *geographer.MeshData, t int) []float64 {
	out := make([]float64, m.N())
	for i := range out {
		x := m.Coords[i*m.Dim]
		y := m.Coords[i*m.Dim+1]
		base := 1.0
		if m.Weights != nil {
			base = m.Weights[i]
		}
		out[i] = base * (1 + 0.4*math.Sin(0.08*x+0.05*y+0.9*float64(t)))
	}
	return out
}

// TestSessionMatchesOneShotChain is the facade-level differential pin
// of the acceptance criterion: a Session chain (one ingest, T warm
// steps) must be bit-identical, step by step, to the equivalent chain
// of one-shot Partition + Repartition calls.
func TestSessionMatchesOneShotChain(t *testing.T) {
	m, err := geographer.GenerateMesh(geographer.MeshClimate, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := geographer.Options{K: 8, Processes: 4}
	const steps = 3

	s, err := geographer.NewSession(m.Coords, m.Dim, m.Weights, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sessBlocks, err := s.Partition()
	if err != nil {
		t.Fatal(err)
	}
	oneBlocks, err := geographer.Partition(m.Coords, m.Dim, m.Weights, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oneBlocks {
		if sessBlocks[i] != oneBlocks[i] {
			t.Fatalf("cold partition diverged at point %d: session %d vs one-shot %d", i, sessBlocks[i], oneBlocks[i])
		}
	}

	prev := oneBlocks
	for step := 1; step <= steps; step++ {
		wt := perturb(m, step)
		if err := s.UpdateWeights(wt); err != nil {
			t.Fatal(err)
		}
		sres, err := s.Repartition()
		if err != nil {
			t.Fatalf("session step %d: %v", step, err)
		}
		ores, err := geographer.Repartition(m.Coords, m.Dim, wt, prev, opts)
		if err != nil {
			t.Fatalf("one-shot step %d: %v", step, err)
		}
		for i := range ores.Blocks {
			if sres.Blocks[i] != ores.Blocks[i] {
				t.Fatalf("step %d diverged at point %d: session %d vs one-shot %d", step, i, sres.Blocks[i], ores.Blocks[i])
			}
		}
		if sres.MigratedWeight != ores.MigratedWeight ||
			sres.MigratedPoints != ores.MigratedPoints ||
			sres.TotalWeight != ores.TotalWeight {
			t.Fatalf("step %d migration stats diverged: session %+v vs one-shot %+v", step, sres, ores)
		}
		prev = ores.Blocks
	}
}

// TestSessionLifecycleErrors covers the facade error contract of the
// Session: construction validation, delta shape validation, and use
// after Close.
func TestSessionLifecycleErrors(t *testing.T) {
	m, err := geographer.GenerateMesh(geographer.MeshDelaunay2D, 800, 3)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := geographer.NewSession(m.Coords, m.Dim, nil, geographer.Options{K: 4, Method: geographer.MethodRCB}); err == nil {
		t.Error("NewSession accepted a non-geographer method")
	}
	if _, err := geographer.NewSession(m.Coords, m.Dim, nil, geographer.Options{K: 0}); err == nil {
		t.Error("NewSession accepted K=0")
	}
	if _, err := geographer.NewSession(nil, 2, nil, geographer.Options{K: 4}); err == nil {
		t.Error("NewSession accepted an empty point set")
	}
	if _, err := geographer.NewSession(m.Coords, m.Dim, make([]float64, 3), geographer.Options{K: 4}); err == nil {
		t.Error("NewSession accepted mismatched weights")
	}

	s, err := geographer.NewSession(m.Coords, m.Dim, nil, geographer.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != nil {
		t.Error("Blocks() non-nil before any partition")
	}
	if _, err := s.Repartition(); err == nil {
		t.Error("Repartition succeeded before Partition/SetPartition")
	}
	if _, err := s.Partition(); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateWeights(make([]float64, 5)); err == nil {
		t.Error("UpdateWeights accepted a wrong-length vector")
	}
	if err := s.UpdateCoords(make([]float64, 5)); err == nil {
		t.Error("UpdateCoords accepted a wrong-length slice")
	}
	if _, err := s.Repartition(); err != nil {
		t.Errorf("Repartition after rejected updates: %v", err)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Partition(); err == nil {
		t.Error("Partition succeeded after Close")
	}
	if _, err := s.Repartition(); err == nil {
		t.Error("Repartition succeeded after Close")
	}
	if err := s.UpdateWeights(nil); err == nil {
		t.Error("UpdateWeights succeeded after Close")
	}
	if err := s.UpdateCoords(m.Coords); err == nil {
		t.Error("UpdateCoords succeeded after Close")
	}
	if err := s.SetPartition(make([]int32, m.N())); err == nil {
		t.Error("SetPartition succeeded after Close")
	}
	if s.Blocks() != nil {
		t.Error("Blocks() non-nil after Close")
	}
}

// TestSessionSetPartition warm-starts a session from an externally
// computed partition and checks the result matches the one-shot
// Repartition from the same seed.
func TestSessionSetPartition(t *testing.T) {
	m, err := geographer.GenerateMesh(geographer.MeshRefined, 1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := geographer.Options{K: 8, Processes: 4}
	initial, err := geographer.Partition(m.Coords, m.Dim, m.Weights, opts)
	if err != nil {
		t.Fatal(err)
	}

	s, err := geographer.NewSession(m.Coords, m.Dim, m.Weights, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SetPartition(initial); err != nil {
		t.Fatal(err)
	}
	sres, err := s.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	ores, err := geographer.Repartition(m.Coords, m.Dim, m.Weights, initial, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ores.Blocks {
		if sres.Blocks[i] != ores.Blocks[i] {
			t.Fatalf("point %d: session %d vs one-shot %d", i, sres.Blocks[i], ores.Blocks[i])
		}
	}
}

// TestSessionRepartitionIfAbove covers the facade threshold trigger:
// skip below eps, act above it, and surface the incremental
// observability fields on warm steps.
func TestSessionRepartitionIfAbove(t *testing.T) {
	m, err := geographer.GenerateMesh(geographer.MeshClimate, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := geographer.Options{K: 8, Processes: 4}
	s, err := geographer.NewSession(m.Coords, m.Dim, m.Weights, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Partition(); err != nil {
		t.Fatal(err)
	}

	if _, _, err := s.RepartitionIfAbove(-1); err == nil {
		t.Error("negative eps accepted")
	}

	// Fresh partition meets epsilon: a loose threshold skips, but still
	// reports the measured imbalance.
	res0, acted, err := s.RepartitionIfAbove(0.5)
	if err != nil || acted || res0.Blocks != nil {
		t.Fatalf("expected skip, got acted=%v res=%+v err=%v", acted, res0, err)
	}
	imb, err := s.Imbalance()
	if err != nil {
		t.Fatal(err)
	}
	if res0.PreImbalance != imb || imb <= 0 {
		t.Errorf("skip path PreImbalance %g, Imbalance() %g; want equal and > 0", res0.PreImbalance, imb)
	}

	// Heavy corner: the trigger fires and the result carries the
	// incremental counters.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	for i := 0; i < m.N(); i++ {
		x := m.Coords[i*m.Dim]
		xmin = math.Min(xmin, x)
		xmax = math.Max(xmax, x)
	}
	skew := make([]float64, m.N())
	for i := range skew {
		skew[i] = 1
		if m.Coords[i*m.Dim] < xmin+(xmax-xmin)/4 {
			skew[i] = 25
		}
	}
	if err := s.UpdateWeights(skew); err != nil {
		t.Fatal(err)
	}
	res, acted, err := s.RepartitionIfAbove(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !acted {
		t.Fatal("did not repartition under heavily skewed weights")
	}
	if len(res.Blocks) != m.N() {
		t.Fatalf("result holds %d blocks for %d points", len(res.Blocks), m.N())
	}
	if res.DistCalcs <= 0 || res.HamerlySkips <= 0 {
		t.Errorf("missing incremental counters: %+v", res)
	}
	if res.BoundaryFrac <= 0 || res.BoundaryFrac > 1 {
		t.Errorf("boundary fraction %g outside (0, 1]", res.BoundaryFrac)
	}

	// A second warm step right after must take the incremental fast
	// path and say so.
	res2, err := s.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Incremental {
		t.Error("second consecutive warm step did not report the incremental fast path")
	}
	if res2.BoundaryFrac >= 1 {
		t.Errorf("incremental step examined the full set (boundary fraction %g)", res2.BoundaryFrac)
	}
}
