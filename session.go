package geographer

import (
	"fmt"
	"strings"

	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/repart"
)

// Session is a long-lived partitioner for workloads that repartition
// repeatedly — the dynamic simulations of the paper's §1, which
// rebalance "when the imbalance exceeds a threshold" as their load
// evolves. Where each one-shot Partition/Repartition call scatters the
// coordinates and rebuilds all distributed state from scratch, a
// Session ingests the point set once at construction and keeps the
// per-rank state (coordinate columns, weights, previous assignment)
// resident, so a chain of T repartitioning steps costs one ingest plus
// T warm k-means phases:
//
//	s, err := geographer.NewSession(coords, 2, weights, geographer.Options{K: 16})
//	defer s.Close()
//	blocks, err := s.Partition()          // cold initial partition
//	for step := range timesteps {
//		err = s.UpdateWeights(newWeights) // load evolved; no re-scatter
//		res, err := s.Repartition()       // warm step: few points migrate
//	}
//
// The partitions are bit-identical to the equivalent sequence of
// one-shot Partition/Repartition calls — the session only removes
// redundant work, never changes results. Only MethodGeographer
// supports sessions (warm starts need the balanced k-means).
//
// A Session holds memory proportional to the point set until Close and
// is not safe for concurrent use.
type Session struct {
	inner  *repart.Session
	closed bool
}

// errSessionClosed is what every Session method returns after Close.
var errSessionClosed = fmt.Errorf("geographer: session is closed")

// NewSession ingests a point set for repeated repartitioning: the
// coordinates (flat, len = n·dim, dim ∈ {2,3}) and weights (nil = unit
// weights) are copied, scattered over opts.Processes simulated ranks,
// and kept resident until Close. Inputs and Options follow Partition;
// Options.Method must be MethodGeographer (or empty).
func NewSession(coords []float64, dim int, weights []float64, opts Options) (*Session, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if strings.ToLower(opts.Method) != MethodGeographer {
		return nil, fmt.Errorf("geographer: sessions require Method=%q, got %q", MethodGeographer, opts.Method)
	}
	ps := &geom.PointSet{Dim: dim, Coords: append([]float64(nil), coords...)}
	if weights != nil {
		ps.Weight = append([]float64(nil), weights...)
	}
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	if ps.Len() == 0 {
		return nil, fmt.Errorf("geographer: empty point set")
	}
	inner, err := repart.NewSession(mpi.NewWorld(opts.Processes), ps, opts.K, opts.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// Partition computes the initial partition of the session's points —
// the full cold pipeline, bit-identical to the one-shot Partition with
// the same Options — and installs it as the session's current
// partition, the seed of the next Repartition.
func (s *Session) Partition() ([]int32, error) {
	if s.closed {
		return nil, errSessionClosed
	}
	p, err := s.inner.Partition()
	if err != nil {
		return nil, err
	}
	return p.Assign, nil
}

// Repartition runs one warm repartitioning step from the session's
// current partition (set by Partition, SetPartition, or the previous
// Repartition) against the current weights and coordinates, installs
// the new partition, and reports it with its migration cost. Results
// are bit-identical to the one-shot Repartition given the same inputs;
// only the per-step scatter/ingest work is gone.
func (s *Session) Repartition() (RepartResult, error) {
	if s.closed {
		return RepartResult{}, errSessionClosed
	}
	p, stats, err := s.inner.Repartition()
	if err != nil {
		return RepartResult{}, err
	}
	return fromStats(p.Assign, stats), nil
}

// RepartitionIfAbove repartitions only when it pays: it measures the
// imbalance of the session's current partition under the current
// weights — coalescing any pending UpdateWeights/UpdateCoords deltas
// costs nothing until a step actually runs — and performs a warm
// repartitioning step only when that imbalance exceeds eps, the
// threshold trigger of the paper's dynamic simulations ("repartition
// when the imbalance exceeds a threshold"). The boolean reports whether
// a step ran: when false, the previous partition is still current and
// the result carries only PreImbalance (the measured imbalance, set on
// both paths), no new assignment. eps must be non-negative; eps 0
// repartitions on any measurable imbalance.
func (s *Session) RepartitionIfAbove(eps float64) (RepartResult, bool, error) {
	if s.closed {
		return RepartResult{}, false, errSessionClosed
	}
	p, stats, acted, err := s.inner.RepartitionIfAbove(eps)
	if err != nil {
		return RepartResult{}, false, err
	}
	if !acted {
		return RepartResult{PreImbalance: stats.PreImbalance}, false, nil
	}
	return fromStats(p.Assign, stats), true, nil
}

// Imbalance measures the imbalance of the session's current partition
// under the current weights and target fractions (max_b
// weight(b)/target(b) − 1) without running the partitioner — the
// quantity RepartitionIfAbove tests against its threshold. Errors when
// no partition has been computed or installed yet.
func (s *Session) Imbalance() (float64, error) {
	if s.closed {
		return 0, errSessionClosed
	}
	return s.inner.Imbalance()
}

// SetPartition installs blocks (one block id in [0, K) per point) as
// the session's current partition without running the partitioner —
// for warm-starting from an assignment computed elsewhere, e.g. a
// checkpoint or another tool. The slice is copied.
func (s *Session) SetPartition(blocks []int32) error {
	if s.closed {
		return errSessionClosed
	}
	return s.inner.SetPartition(blocks)
}

// UpdateWeights replaces the point weights (nil = unit weights; length
// must match the point count otherwise). Only the weight columns are
// touched — no coordinates move, nothing is re-scattered. The next
// Repartition balances against the new weights.
func (s *Session) UpdateWeights(weights []float64) error {
	if s.closed {
		return errSessionClosed
	}
	return s.inner.UpdateWeights(weights)
}

// UpdateCoords replaces the point coordinates (flat, len = n·dim, same
// n and dim as at construction). Point identity is preserved — this
// models points that moved, not a new point set — so the current
// partition remains a valid warm-start seed.
func (s *Session) UpdateCoords(coords []float64) error {
	if s.closed {
		return errSessionClosed
	}
	return s.inner.UpdateCoords(coords)
}

// Blocks returns a copy of the session's current partition, or nil if
// none has been computed or installed yet.
func (s *Session) Blocks() []int32 {
	if s.closed {
		return nil
	}
	return s.inner.Blocks()
}

// IngestSeconds reports the one-time cost NewSession paid to scatter
// the points and build the resident per-rank state — the work each
// one-shot Repartition call repeats and a session amortizes across
// steps.
func (s *Session) IngestSeconds() float64 {
	if s.closed {
		return 0
	}
	return s.inner.IngestSeconds()
}

// Close releases the resident per-rank state. Closing twice is a
// no-op. After Close, every mutating method (Partition, Repartition,
// SetPartition, UpdateWeights, UpdateCoords) errors; the read-only
// accessors Blocks and IngestSeconds return their zero values.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.inner.Close()
}
