package geographer

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/repart"
)

// Session is a long-lived partitioner for workloads that repartition
// repeatedly — the dynamic simulations of the paper's §1, which
// rebalance "when the imbalance exceeds a threshold" as their load
// evolves. Where each one-shot Partition/Repartition call scatters the
// coordinates and rebuilds all distributed state from scratch, a
// Session ingests the point set once at construction and keeps the
// per-rank state (coordinate columns, weights, previous assignment)
// resident, so a chain of T repartitioning steps costs one ingest plus
// T warm k-means phases:
//
//	s, err := geographer.NewSession(coords, 2, weights, geographer.Options{K: 16})
//	defer s.Close()
//	blocks, err := s.Partition()          // cold initial partition
//	for step := range timesteps {
//		err = s.UpdateWeights(newWeights) // load evolved; no re-scatter
//		res, err := s.Repartition()       // warm step: few points migrate
//	}
//
// The partitions are bit-identical to the equivalent sequence of
// one-shot Partition/Repartition calls — the session only removes
// redundant work, never changes results. Only MethodGeographer
// supports sessions (warm starts need the balanced k-means).
//
// A Session holds memory proportional to the point set until Close. It
// is safe for concurrent use: calls are serialized (each observes a
// consistent state), and a call racing Close deterministically returns
// the closed-session error rather than tearing down state mid-verb.
type Session struct {
	mu     sync.Mutex
	inner  *repart.Session
	closed bool
}

// errSessionClosed is what every Session method returns after Close.
var errSessionClosed = fmt.Errorf("geographer: session is closed")

// get snapshots the inner session under the facade lock; every verb
// goes through it so a call racing Close sees either the live session
// or errSessionClosed, never a torn state. The inner session serializes
// its own verbs, so the facade lock is not held across them.
func (s *Session) get() (*repart.Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errSessionClosed
	}
	return s.inner, nil
}

// mapErr rewrites the inner closed-session sentinel (reachable when
// Close lands between get and the inner call) into the facade's.
func mapErr(err error) error {
	if errors.Is(err, repart.ErrClosed) {
		return errSessionClosed
	}
	return err
}

// NewSession ingests a point set for repeated repartitioning: the
// coordinates (flat, len = n·dim, dim ∈ {2,3}) and weights (nil = unit
// weights) are copied, scattered over opts.Processes simulated ranks,
// and kept resident until Close. Inputs and Options follow Partition;
// Options.Method must be MethodGeographer (or empty).
func NewSession(coords []float64, dim int, weights []float64, opts Options) (*Session, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if strings.ToLower(opts.Method) != MethodGeographer {
		return nil, fmt.Errorf("geographer: sessions require Method=%q, got %q", MethodGeographer, opts.Method)
	}
	ps := &geom.PointSet{Dim: dim, Coords: append([]float64(nil), coords...)}
	if weights != nil {
		ps.Weight = append([]float64(nil), weights...)
	}
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	if ps.Len() == 0 {
		return nil, fmt.Errorf("geographer: empty point set")
	}
	inner, err := repart.NewSession(mpi.NewWorld(opts.Processes), ps, opts.K, opts.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// Partition computes the initial partition of the session's points —
// the full cold pipeline, bit-identical to the one-shot Partition with
// the same Options — and installs it as the session's current
// partition, the seed of the next Repartition.
func (s *Session) Partition() ([]int32, error) {
	inner, err := s.get()
	if err != nil {
		return nil, err
	}
	p, err := inner.Partition()
	if err != nil {
		return nil, mapErr(err)
	}
	return p.Assign, nil
}

// Repartition runs one warm repartitioning step from the session's
// current partition (set by Partition, SetPartition, or the previous
// Repartition) against the current weights and coordinates, installs
// the new partition, and reports it with its migration cost. Results
// are bit-identical to the one-shot Repartition given the same inputs;
// only the per-step scatter/ingest work is gone.
func (s *Session) Repartition() (RepartResult, error) {
	inner, err := s.get()
	if err != nil {
		return RepartResult{}, err
	}
	p, stats, err := inner.Repartition()
	if err != nil {
		return RepartResult{}, mapErr(err)
	}
	return fromStats(p.Assign, stats), nil
}

// RepartitionIfAbove repartitions only when it pays: it measures the
// imbalance of the session's current partition under the current
// weights — coalescing any pending UpdateWeights/UpdateCoords deltas
// costs nothing until a step actually runs — and performs a warm
// repartitioning step only when that imbalance exceeds eps, the
// threshold trigger of the paper's dynamic simulations ("repartition
// when the imbalance exceeds a threshold"). The boolean reports whether
// a step ran: when false, the previous partition is still current and
// the result carries only PreImbalance (the measured imbalance, set on
// both paths), no new assignment. eps must be non-negative; eps 0
// repartitions on any measurable imbalance.
func (s *Session) RepartitionIfAbove(eps float64) (RepartResult, bool, error) {
	inner, err := s.get()
	if err != nil {
		return RepartResult{}, false, err
	}
	p, stats, acted, err := inner.RepartitionIfAbove(eps)
	if err != nil {
		return RepartResult{}, false, mapErr(err)
	}
	if !acted {
		return RepartResult{PreImbalance: stats.PreImbalance}, false, nil
	}
	return fromStats(p.Assign, stats), true, nil
}

// Imbalance measures the imbalance of the session's current partition
// under the current weights and target fractions (max_b
// weight(b)/target(b) − 1) without running the partitioner — the
// quantity RepartitionIfAbove tests against its threshold. Errors when
// no partition has been computed or installed yet.
func (s *Session) Imbalance() (float64, error) {
	inner, err := s.get()
	if err != nil {
		return 0, err
	}
	imb, err := inner.Imbalance()
	return imb, mapErr(err)
}

// SetPartition installs blocks (one block id in [0, K) per point) as
// the session's current partition without running the partitioner —
// for warm-starting from an assignment computed elsewhere, e.g. a
// checkpoint or another tool. The slice is copied.
func (s *Session) SetPartition(blocks []int32) error {
	inner, err := s.get()
	if err != nil {
		return err
	}
	return mapErr(inner.SetPartition(blocks))
}

// UpdateWeights replaces the point weights (nil = unit weights; length
// must match the point count otherwise). Only the weight columns are
// touched — no coordinates move, nothing is re-scattered. The next
// Repartition balances against the new weights.
func (s *Session) UpdateWeights(weights []float64) error {
	inner, err := s.get()
	if err != nil {
		return err
	}
	return mapErr(inner.UpdateWeights(weights))
}

// UpdateCoords replaces the point coordinates (flat, len = n·dim, same
// n and dim as at construction). Point identity is preserved — this
// models points that moved, not a new point set — so the current
// partition remains a valid warm-start seed.
func (s *Session) UpdateCoords(coords []float64) error {
	inner, err := s.get()
	if err != nil {
		return err
	}
	return mapErr(inner.UpdateCoords(coords))
}

// Blocks returns a copy of the session's current partition, or nil if
// none has been computed or installed yet.
func (s *Session) Blocks() []int32 {
	inner, err := s.get()
	if err != nil {
		return nil
	}
	return inner.Blocks()
}

// IngestSeconds reports the one-time cost NewSession paid to scatter
// the points and build the resident per-rank state — the work each
// one-shot Repartition call repeats and a session amortizes across
// steps.
func (s *Session) IngestSeconds() float64 {
	inner, err := s.get()
	if err != nil {
		return 0
	}
	return inner.IngestSeconds()
}

// Close releases the resident per-rank state. Closing twice is a
// no-op. After Close, every mutating method (Partition, Repartition,
// SetPartition, UpdateWeights, UpdateCoords) errors; the read-only
// accessors Blocks and IngestSeconds return their zero values.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	inner := s.inner
	s.mu.Unlock()
	// inner.Close serializes against any verb that fetched the session
	// before the flag flipped: it waits for the in-flight call to finish
	// rather than releasing resident state out from under it.
	return inner.Close()
}

// Checkpoint serializes the session's complete restorable state — the
// current coordinates and weights (pending deltas included), the
// installed partition, and every rank's resident state with its carried
// incremental k-means bounds — into a self-describing, versioned binary
// blob. The call is purely local (no simulated communication) and does
// not disturb the session; NewSessionFromCheckpoint rebuilds an
// equivalent session whose next warm step is bit-identical to the step
// this session would run, including the incremental fast path.
//
// The Options are NOT embedded: pass the same Options to
// NewSessionFromCheckpoint that this session was built with (options
// hold policy, checkpoints hold state).
func (s *Session) Checkpoint() ([]byte, error) {
	inner, err := s.get()
	if err != nil {
		return nil, err
	}
	data, err := inner.Checkpoint()
	return data, mapErr(err)
}

// NewSessionFromCheckpoint rebuilds a session from Checkpoint bytes.
// opts must repeat the Options of the checkpointed session; as a
// convenience, a zero opts.K and a zero opts.Processes are filled from
// the checkpoint header (a non-zero value must match it — restoring
// onto a different rank count or block count is an error, not a
// resharding operation). Corrupted, truncated, or wrong-version data is
// rejected with a descriptive error; it never panics.
func NewSessionFromCheckpoint(data []byte, opts Options) (*Session, error) {
	info, err := repart.ReadCheckpointInfo(data)
	if err != nil {
		return nil, fmt.Errorf("geographer: restore: %w", err)
	}
	if opts.K == 0 {
		opts.K = info.K
	}
	if opts.Processes == 0 {
		opts.Processes = info.P
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if strings.ToLower(opts.Method) != MethodGeographer {
		return nil, fmt.Errorf("geographer: sessions require Method=%q, got %q", MethodGeographer, opts.Method)
	}
	if opts.K != info.K {
		return nil, fmt.Errorf("geographer: restore with K=%d, checkpoint has %d blocks", opts.K, info.K)
	}
	if opts.Processes != info.P {
		return nil, fmt.Errorf("geographer: restore with Processes=%d, checkpoint has %d ranks", opts.Processes, info.P)
	}
	inner, err := repart.NewSessionFromCheckpoint(mpi.NewWorld(info.P), data, opts.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// RetryPolicy bounds the fault-recovery loop of
// Session.RepartitionWithRetry. The zero value is usable: 3 retries,
// 10ms base backoff doubling to a 1s cap, real sleeping.
type RetryPolicy struct {
	// MaxRetries is how many rollback-and-retry cycles may follow a
	// failed first attempt (<=0 means 3).
	MaxRetries int
	// BaseBackoff is the pause before the first retry (<=0 means 10ms);
	// it doubles per retry up to MaxBackoff (<=0 means 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep implements the backoff pause; tests substitute a recorder.
	// Nil means time.Sleep.
	Sleep func(time.Duration)
}

// RepartitionWithRetry is RepartitionIfAbove under fault tolerance: the
// session checkpoints itself, runs the threshold-triggered warm step
// cancellable through ctx, and — if the simulated runtime aborts (a
// rank failure mid-collective) — rolls back to the checkpoint, rebuilds
// the runtime, backs off, and retries, up to policy.MaxRetries times.
// Warm steps are deterministic functions of the checkpointed state, so
// the partition a successful retry produces is bit-identical to what a
// fault-free step would have computed; RepartResult.Retries reports how
// many rollbacks were needed. Cancellation through ctx is terminal:
// the aborted attempt is not retried and the abort error (wrapping the
// context's cause) is returned. Argument errors are returned
// immediately without retrying.
func (s *Session) RepartitionWithRetry(ctx context.Context, eps float64, policy RetryPolicy) (RepartResult, bool, error) {
	inner, err := s.get()
	if err != nil {
		return RepartResult{}, false, err
	}
	p, stats, acted, err := inner.RepartitionWithRetry(ctx, eps, repart.RetryPolicy{
		MaxRetries:  policy.MaxRetries,
		BaseBackoff: policy.BaseBackoff,
		MaxBackoff:  policy.MaxBackoff,
		Sleep:       policy.Sleep,
	})
	if err != nil {
		return RepartResult{}, false, mapErr(err)
	}
	if !acted {
		return RepartResult{PreImbalance: stats.PreImbalance, Retries: stats.Retries}, false, nil
	}
	return fromStats(p.Assign, stats), true, nil
}
