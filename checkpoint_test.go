package geographer_test

import (
	"context"
	"testing"
	"time"

	"geographer"
)

// warmFacadeSession builds a facade session, runs a cold partition and
// `warm` weight-perturbed warm steps. Two calls with the same arguments
// produce bit-identical sessions.
func warmFacadeSession(t *testing.T, m *geographer.MeshData, opts geographer.Options, warm int) *geographer.Session {
	t.Helper()
	s, err := geographer.NewSession(m.Coords, m.Dim, m.Weights, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Partition(); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= warm; step++ {
		if err := s.UpdateWeights(perturb(m, step)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Repartition(); err != nil {
			t.Fatalf("warm step %d: %v", step, err)
		}
	}
	return s
}

// TestSessionCheckpointRestore pins the facade checkpoint contract:
// restore with zero K/Processes (filled from the checkpoint header),
// then the restored session's next warm step is bit-identical to the
// uninterrupted session's, still on the incremental fast path.
func TestSessionCheckpointRestore(t *testing.T) {
	m, err := geographer.GenerateMesh(geographer.MeshClimate, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := geographer.Options{K: 8, Processes: 4}

	orig := warmFacadeSession(t, m, opts, 2)
	defer orig.Close()
	ckpt, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := geographer.NewSessionFromCheckpoint(ckpt, geographer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	ob, rb := orig.Blocks(), restored.Blocks()
	if len(ob) != len(rb) {
		t.Fatalf("restored partition has %d points, want %d", len(rb), len(ob))
	}
	for i := range ob {
		if ob[i] != rb[i] {
			t.Fatalf("restored partition diverged at point %d: %d vs %d", i, rb[i], ob[i])
		}
	}

	wt := perturb(m, 3)
	if err := orig.UpdateWeights(wt); err != nil {
		t.Fatal(err)
	}
	if err := restored.UpdateWeights(wt); err != nil {
		t.Fatal(err)
	}
	want, err := orig.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Blocks {
		if want.Blocks[i] != got.Blocks[i] {
			t.Fatalf("restored chain diverged at point %d: %d vs %d", i, got.Blocks[i], want.Blocks[i])
		}
	}
	if !got.Incremental {
		t.Fatal("restored warm step did not take the incremental fast path")
	}
	if got.MigratedWeight != want.MigratedWeight || got.MigratedPoints != want.MigratedPoints {
		t.Fatalf("migration stats diverged: restored (%g, %d) vs original (%g, %d)",
			got.MigratedWeight, got.MigratedPoints, want.MigratedWeight, want.MigratedPoints)
	}
}

// TestSessionCheckpointRejects covers the facade restore error surface.
func TestSessionCheckpointRejects(t *testing.T) {
	m, err := geographer.GenerateMesh(geographer.MeshDelaunay2D, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := geographer.Options{K: 4, Processes: 2}
	s := warmFacadeSession(t, m, opts, 1)
	defer s.Close()
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		opts geographer.Options
	}{
		{"wrong K", ckpt, geographer.Options{K: 5}},
		{"wrong Processes", ckpt, geographer.Options{Processes: 3}},
		{"wrong method", ckpt, geographer.Options{Method: geographer.MethodRCB}},
		{"truncated", ckpt[:len(ckpt)/2], geographer.Options{}},
		{"empty", nil, geographer.Options{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := geographer.NewSessionFromCheckpoint(tc.data, tc.opts); err == nil {
				t.Fatal("restore succeeded, want error")
			}
		})
	}

	s2 := warmFacadeSession(t, m, opts, 0)
	s2.Close()
	if _, err := s2.Checkpoint(); err == nil {
		t.Fatal("checkpoint of a closed session succeeded")
	}
}

// TestSessionRepartitionWithRetryFacade exercises the facade retry
// driver on the fault-free path (fault-injected recovery is pinned at
// the repart layer, which owns the world factory): the result matches
// RepartitionIfAbove exactly with Retries 0, and a cancelled context is
// surfaced as an error without sleeping.
func TestSessionRepartitionWithRetryFacade(t *testing.T) {
	m, err := geographer.GenerateMesh(geographer.MeshClimate, 1200, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := geographer.Options{K: 4, Processes: 2}

	ref := warmFacadeSession(t, m, opts, 1)
	defer ref.Close()
	if err := ref.UpdateWeights(perturb(m, 9)); err != nil {
		t.Fatal(err)
	}
	want, acted, err := ref.RepartitionIfAbove(0)
	if err != nil {
		t.Fatal(err)
	}
	if !acted {
		t.Fatal("reference step did not trigger")
	}

	vic := warmFacadeSession(t, m, opts, 1)
	defer vic.Close()
	if err := vic.UpdateWeights(perturb(m, 9)); err != nil {
		t.Fatal(err)
	}
	var sleeps []time.Duration
	pol := geographer.RetryPolicy{Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }}
	got, acted, err := vic.RepartitionWithRetry(context.Background(), 0, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !acted || got.Retries != 0 || len(sleeps) != 0 {
		t.Fatalf("fault-free retry: acted=%v Retries=%d sleeps=%v", acted, got.Retries, sleeps)
	}
	for i := range want.Blocks {
		if want.Blocks[i] != got.Blocks[i] {
			t.Fatalf("retry step diverged at point %d: %d vs %d", i, got.Blocks[i], want.Blocks[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := vic.UpdateWeights(perturb(m, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := vic.RepartitionWithRetry(ctx, 0, pol); err == nil {
		t.Fatal("cancelled context succeeded")
	}
	if len(sleeps) != 0 {
		t.Fatalf("cancelled context slept: %v", sleeps)
	}
}
