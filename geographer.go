// Package geographer is a Go implementation of Geographer, the balanced
// k-means mesh partitioner of von Looz, Tzovas and Meyerhenke ("Balanced
// k-means for Parallel Geometric Partitioning", ICPP 2018), together with
// the geometric partitioners it is evaluated against (RCB, RIB,
// MultiJagged, Hilbert-SFC) and the full evaluation harness of the paper.
//
// This root package is the stable facade: plain-slice inputs, no internal
// types. The implementation lives under internal/ (see DESIGN.md for the
// architecture and README.md for a tour).
//
// Quick start:
//
//	blocks, err := geographer.Partition(coords, 2, nil, geographer.Options{K: 16})
//
// partitions 2D points (x0,y0,x1,y1,...) into 16 balanced blocks. When
// the load evolves and the points must be partitioned again,
//
//	res, err := geographer.Repartition(coords, 2, newWeights, blocks, geographer.Options{K: 16})
//
// warm-starts from the previous partition: it skips the
// sort/redistribution bootstrap and moves far less weight between
// blocks (res.MigratedWeight) than a fresh Partition call.
//
// When a simulation repartitions every timestep, use a Session instead
// of a loop of one-shot calls: it ingests the points once, keeps the
// distributed state resident, and exposes the same warm repartitioning
// with UpdateWeights/UpdateCoords deltas in between —
//
//	s, _ := geographer.NewSession(coords, 2, weights, geographer.Options{K: 16})
//	defer s.Close()
//	blocks, err := s.Partition()
//	for ... {
//		s.UpdateWeights(w)
//		res, err := s.Repartition()
//	}
//
// with results bit-identical to the one-shot chain.
package geographer

import (
	"fmt"
	"strings"

	"geographer/internal/baselines"
	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/graph"
	"geographer/internal/mesh"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/refine"
	"geographer/internal/repart"
	"geographer/internal/spmv"
	"geographer/internal/viz"
)

// Method names accepted by Options.Method.
const (
	MethodGeographer  = "geographer" // balanced k-means (the paper's algorithm)
	MethodRCB         = "rcb"
	MethodRIB         = "rib"
	MethodMultiJagged = "multijagged"
	MethodHSFC        = "hsfc"
)

// Options configures Partition.
type Options struct {
	// K is the number of blocks (required, >= 1).
	K int
	// Method selects the partitioner; empty means MethodGeographer.
	Method string
	// Epsilon is the allowed imbalance (default 0.03; negative is an
	// error — the balance condition could never be met).
	Epsilon float64
	// Processes is the number of simulated parallel ranks (default 4).
	// The result does not depend on it except through tie-level noise.
	Processes int
	// Seed drives the algorithm's internal sampling (default 1).
	Seed int64
	// Strict makes Epsilon a hard guarantee for MethodGeographer.
	Strict bool
	// TargetFractions optionally sets heterogeneous block sizes; only
	// supported by MethodGeographer. Length K, every fraction strictly
	// positive, summing to 1 — enforced, since a zero or negative
	// fraction would silently skew the balance of every other block.
	TargetFractions []float64
	// Workers sets MethodGeographer's intra-rank kernel shard count: when
	// the host has more cores than Processes, each simulated rank splits
	// its assignment work across this many concurrent shards. 0 = auto
	// (GOMAXPROCS/Processes), 1 = serial.
	Workers int
	// Deterministic makes MethodGeographer's cold partitions bit-identical
	// across every Processes and Workers setting (warm repartitioning
	// already is): sampled initialization is disabled and all global float
	// reductions run through order-independent exact accumulators. Costs
	// some cold-start speed; other methods ignore it.
	Deterministic bool
}

func (o Options) withDefaults() Options {
	if o.Method == "" {
		o.Method = MethodGeographer
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.03
	}
	if o.Processes == 0 {
		o.Processes = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// validate rejects configurations that would previously fail silently
// (a negative Epsilon makes the balance check unsatisfiable and burns
// every balance round; zero/negative or non-normalized TargetFractions
// skew the balance targets) or panic (a negative Processes count).
// Call after withDefaults.
func (o Options) validate() error {
	if o.K < 1 {
		return fmt.Errorf("geographer: K=%d", o.K)
	}
	if o.Epsilon < 0 {
		return fmt.Errorf("geographer: Epsilon=%g is negative (the imbalance bound can never be met)", o.Epsilon)
	}
	if o.Processes < 1 {
		return fmt.Errorf("geographer: Processes=%d", o.Processes)
	}
	if o.TargetFractions != nil {
		if _, err := partition.CheckFractions(o.TargetFractions, o.K); err != nil {
			return err
		}
	}
	return nil
}

// coreConfig translates the facade Options into the balanced-k-means
// configuration of internal/core (all paper optimizations on).
func (o Options) coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Epsilon = o.Epsilon
	cfg.Seed = o.Seed
	cfg.Strict = o.Strict
	cfg.TargetFractions = o.TargetFractions
	cfg.Workers = o.Workers
	cfg.Deterministic = o.Deterministic
	return cfg
}

func (o Options) tool() (partition.Distributed, error) {
	switch strings.ToLower(o.Method) {
	case MethodGeographer:
		return core.New(o.coreConfig()), nil
	case MethodRCB:
		return baselines.RCB(), nil
	case MethodRIB:
		return baselines.RIB(), nil
	case MethodMultiJagged, "mj":
		return baselines.MultiJagged(), nil
	case MethodHSFC, "sfc":
		return baselines.HSFC{}, nil
	default:
		return nil, fmt.Errorf("geographer: unknown method %q", o.Method)
	}
}

// Partition assigns each point to a block in [0, K). Coordinates are
// flat (len = n·dim); weights may be nil for unit weights.
// MethodGeographer accepts any dim ≥ 1 — beyond 3 the space-filling-
// curve bootstrap is replaced by seeded sampling and the clustering runs
// through the generic-dimension kernels (balanced clustering in feature
// space). The geometric baseline methods remain spatial (dim ∈ {1,2,3}).
func Partition(coords []float64, dim int, weights []float64, opts Options) ([]int32, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ps := &geom.PointSet{Dim: dim, Coords: coords, Weight: weights}
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	if dim > geom.MaxDim && strings.ToLower(opts.Method) != MethodGeographer {
		return nil, fmt.Errorf("geographer: method %q is spatial-only (dim ≤ %d); use Method=%q for %d-dimensional inputs",
			opts.Method, geom.MaxDim, MethodGeographer, dim)
	}
	tool, err := opts.tool()
	if err != nil {
		return nil, err
	}
	world := mpi.NewWorld(opts.Processes)
	p, err := partition.Run(world, ps, opts.K, tool)
	if err != nil {
		return nil, err
	}
	return p.Assign, nil
}

// RepartResult is what Repartition returns: the new assignment plus the
// migration cost of adopting it.
type RepartResult struct {
	// Blocks assigns each point its new block in [0, K).
	Blocks []int32
	// MigratedWeight is the total weight of points whose block differs
	// from prevAssign — the data-movement cost the simulation pays when
	// it adopts the new partition; MigratedPoints counts those points.
	MigratedWeight float64
	MigratedPoints int
	// TotalWeight is the weight of the whole point set, so
	// MigratedWeight/TotalWeight is the migrated fraction.
	TotalWeight float64

	// DistCalcs and HamerlySkips expose the step's global
	// distance-evaluation and bound-skip counts — the cost the
	// incremental warm path (sessions; see Session.Repartition) exists
	// to cut.
	DistCalcs    int64
	HamerlySkips int64
	// Incremental reports whether this step took the incremental fast
	// path: every rank corrected and reused the distance bounds carried
	// from the previous warm step instead of recomputing all points.
	// One-shot Repartition calls always report false (there is no
	// previous resident step to carry from).
	Incremental bool
	// BoundaryFrac is the fraction of points the step's first
	// assignment pass had to examine — the boundary points whose
	// corrected bounds could not prove their assignment unchanged. 1.0
	// on non-incremental steps.
	BoundaryFrac float64

	// PreImbalance is the imbalance of the previous partition under the
	// current weights, measured before the step ran. Only
	// Session.RepartitionIfAbove fills it (on both the skip and the act
	// path — it is the quantity tested against the threshold); other
	// entry points leave it 0.
	PreImbalance float64

	// Retries counts the rollback-and-retry cycles
	// Session.RepartitionWithRetry needed before this step succeeded
	// (0 = the first attempt worked; other entry points always leave
	// it 0).
	Retries int
}

// fromStats copies the migration and incremental-observability numbers
// of one warm step into the facade shape.
func fromStats(blocks []int32, st repart.Stats) RepartResult {
	return RepartResult{
		Blocks:         blocks,
		MigratedWeight: st.MigratedWeight,
		MigratedPoints: st.MigratedPoints,
		TotalWeight:    st.TotalWeight,
		DistCalcs:      st.DistCalcs,
		HamerlySkips:   st.HamerlySkips,
		Incremental:    st.Incremental,
		BoundaryFrac:   st.BoundaryFrac,
		PreImbalance:   st.PreImbalance,
		Retries:        st.Retries,
	}
}

// Repartition recomputes a partition for points that already carry one —
// the dynamic-workload scenario of the paper's §1, where a simulation
// repartitions repeatedly as its load evolves. Instead of bootstrapping
// from the space-filling curve, the balanced k-means is warm-started
// from the centers of prevAssign (their weighted means), which skips
// the SFC sort/redistribution phase entirely and keeps the new
// partition close to the old one: far less weight migrates than under a
// fresh Partition call at comparable cut and imbalance.
//
// Inputs follow Partition: coords is flat (len = n·dim, any dim ≥ 1),
// weights may be nil for unit weights, and prevAssign must hold one
// block id in [0, K) per point — typically a previous Partition or
// Repartition result, but any valid assignment seeds the warm start.
// Only MethodGeographer supports warm starts; other methods are an
// error. The result is deterministic: the same input and prevAssign
// produce a bit-identical partition for every Processes and Workers
// setting (see DESIGN.md, "Repartitioning invariants").
func Repartition(coords []float64, dim int, weights []float64, prevAssign []int32, opts Options) (RepartResult, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return RepartResult{}, err
	}
	if strings.ToLower(opts.Method) != MethodGeographer {
		return RepartResult{}, fmt.Errorf("geographer: warm-start repartitioning requires Method=%q, got %q", MethodGeographer, opts.Method)
	}
	ps := &geom.PointSet{Dim: dim, Coords: coords, Weight: weights}
	if err := ps.Validate(); err != nil {
		return RepartResult{}, err
	}
	world := mpi.NewWorld(opts.Processes)
	p, stats, err := repart.Repartition(world, ps, prevAssign, opts.K, opts.coreConfig())
	if err != nil {
		return RepartResult{}, err
	}
	return fromStats(p.Assign, stats), nil
}

// Quality holds the graph-based partition metrics of the paper (§2).
type Quality struct {
	// EdgeCut counts mesh edges whose endpoints lie in different blocks.
	EdgeCut int64
	// MaxCommVol is the largest per-block communication volume (boundary
	// vertices counted once per neighboring block); TotalCommVol sums it
	// over all blocks.
	MaxCommVol   int64
	TotalCommVol int64
	// Imbalance is max_b weight(b)/target(b) − 1; a partition meets the
	// balance constraint when Imbalance ≤ ε.
	Imbalance float64
	// HarmDiameter is the harmonic mean of the block graph diameters
	// (the paper's block-shape measure; lower = more compact).
	HarmDiameter float64
	// Disconnected counts blocks that are not connected subgraphs, and
	// EmptyBlocks counts blocks with no vertices at all.
	Disconnected int
	EmptyBlocks  int
}

// Evaluate computes partition quality over a CSR mesh graph: adjacency of
// vertex v is adj[xadj[v]:xadj[v+1]].
func Evaluate(xadj []int64, adj []int32, coords []float64, dim int, weights []float64, part []int32, k int) (Quality, error) {
	n := len(xadj) - 1
	g := &graph.Graph{N: n, Xadj: xadj, Adj: adj}
	ps := &geom.PointSet{Dim: dim, Coords: coords, Weight: weights}
	if err := ps.Validate(); err != nil {
		return Quality{}, err
	}
	if ps.Len() != n {
		return Quality{}, fmt.Errorf("geographer: %d points vs %d graph vertices", ps.Len(), n)
	}
	if len(part) != n {
		return Quality{}, fmt.Errorf("geographer: %d assignments for %d vertices", len(part), n)
	}
	r, err := metrics.Evaluate(g, ps, part, k)
	if err != nil {
		return Quality{}, err
	}
	return Quality{
		EdgeCut:      r.EdgeCut,
		MaxCommVol:   r.MaxCommVol,
		TotalCommVol: r.TotCommVol,
		Imbalance:    r.Imbalance,
		HarmDiameter: r.HarmDiam,
		Disconnected: r.Disconnected,
		EmptyBlocks:  r.EmptyBlocks,
	}, nil
}

// MeshData is a self-contained mesh: points plus CSR adjacency.
type MeshData struct {
	// Name identifies the mesh (generator kind or file name).
	Name string
	// Dim is the coordinate dimension (2 or 3).
	Dim int
	// Coords holds the vertex coordinates, flat with stride Dim.
	Coords []float64
	// Weights holds one weight per vertex; nil means unit weights.
	Weights []float64
	// XAdj and Adj store the adjacency in CSR form: the neighbors of
	// vertex v are Adj[XAdj[v]:XAdj[v+1]].
	XAdj []int64
	Adj  []int32
}

// N returns the number of vertices.
func (m *MeshData) N() int { return len(m.XAdj) - 1 }

// Mesh kinds accepted by GenerateMesh.
const (
	MeshDelaunay2D = "delaunay2d" // Delaunay triangulation of uniform points
	MeshRefined    = "refined"    // adaptively refined triangle mesh (hugetric-like)
	MeshBubbles    = "bubbles"    // hugebubbles-like
	MeshAirfoil    = "airfoil"    // FEM boundary-layer mesh (NACA-like)
	MeshRGG        = "rgg"        // random geometric graph
	MeshClimate    = "climate"    // 2.5D ocean mesh with layer weights
	MeshDelaunay3D = "delaunay3d" // 3D Delaunay analog (kNN adjacency)
	MeshTube3D     = "tube3d"     // branching-tube 3D mesh (alya-like)
)

// GenerateMesh produces one of the synthetic benchmark meshes used in the
// evaluation (deterministic in n and seed).
func GenerateMesh(kind string, n int, seed int64) (*MeshData, error) {
	var m *mesh.Mesh
	var err error
	switch strings.ToLower(kind) {
	case MeshDelaunay2D:
		m, err = mesh.GenDelaunayUniform2D(n, seed)
	case MeshRefined:
		m, err = mesh.GenRefinedTri(n, seed)
	case MeshBubbles:
		m, err = mesh.GenBubbles(n, seed)
	case MeshAirfoil:
		m, err = mesh.GenAirfoil(n, seed)
	case MeshRGG:
		m, err = mesh.GenRGG2D(n, seed, 13)
	case MeshClimate:
		m, err = mesh.GenClimate(n, seed)
	case MeshDelaunay3D:
		m, err = mesh.GenDelaunay3D(n, seed)
	case MeshTube3D:
		m, err = mesh.GenTube3D(n, seed)
	default:
		return nil, fmt.Errorf("geographer: unknown mesh kind %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return &MeshData{
		Name:    m.Name,
		Dim:     m.Points.Dim,
		Coords:  m.Points.Coords,
		Weights: m.Points.Weight,
		XAdj:    m.G.Xadj,
		Adj:     m.G.Adj,
	}, nil
}

// SpMVCommTime runs the paper's SpMV communication benchmark (§2) on a
// partitioned CSR graph and returns the modeled and wall-clock
// communication seconds per multiplication.
func SpMVCommTime(xadj []int64, adj []int32, part []int32, k, iters int) (modeled, wall float64, err error) {
	g := &graph.Graph{N: len(xadj) - 1, Xadj: xadj, Adj: adj}
	res, err := spmv.Benchmark(g, part, k, iters)
	if err != nil {
		return 0, 0, err
	}
	return res.ModeledCommSeconds, res.CommSeconds, nil
}

// Extrude materializes the 2.5D use case (paper §1): it builds the full
// 3D mesh from a weighted 2D surface mesh (weight = vertical layer count)
// and lifts a surface partition column-wise onto it. Returns the 3D mesh
// and the lifted partition.
func Extrude(surface *MeshData, part2d []int32, layerHeight float64) (*MeshData, []int32, error) {
	m := &mesh.Mesh{
		Name:   surface.Name,
		Points: &geom.PointSet{Dim: surface.Dim, Coords: surface.Coords, Weight: surface.Weights},
		G:      &graph.Graph{N: surface.N(), Xadj: surface.XAdj, Adj: surface.Adj},
	}
	m3, err := mesh.Extrude25D(m, layerHeight)
	if err != nil {
		return nil, nil, err
	}
	lifted, err := mesh.LiftPartition(m, part2d)
	if err != nil {
		return nil, nil, err
	}
	return &MeshData{
		Name:   m3.Name,
		Dim:    3,
		Coords: m3.Points.Coords,
		XAdj:   m3.G.Xadj,
		Adj:    m3.G.Adj,
	}, lifted, nil
}

// RefineResult reports what a refinement pass achieved.
type RefineResult struct {
	// Moves is the number of boundary vertices that changed block.
	Moves int
	// CutBefore and CutAfter are the edge cut at entry and exit.
	CutBefore int64
	CutAfter  int64
}

// RefinePartition runs the optional Fiduccia–Mattheyses-style boundary
// refinement (an extension the paper mentions as possible in §2) on a
// partition, in place. Balance within epsilon is preserved.
func RefinePartition(xadj []int64, adj []int32, coords []float64, dim int, weights []float64, part []int32, k int, epsilon float64) (RefineResult, error) {
	g := &graph.Graph{N: len(xadj) - 1, Xadj: xadj, Adj: adj}
	ps := &geom.PointSet{Dim: dim, Coords: coords, Weight: weights}
	opts := refine.DefaultOptions()
	if epsilon > 0 {
		opts.Epsilon = epsilon
	}
	res, err := refine.Refine(g, ps, part, k, opts)
	if err != nil {
		return RefineResult{}, err
	}
	return RefineResult{Moves: res.Moves, CutBefore: res.CutBefore, CutAfter: res.CutAfter}, nil
}

// RenderSVG writes a colored 2D partition image (Figure 1 style).
func RenderSVG(path string, coords []float64, part []int32, k int) error {
	ps := &geom.PointSet{Dim: 2, Coords: coords}
	return viz.RenderToFile(path, ps, part, k, viz.DefaultOptions())
}
