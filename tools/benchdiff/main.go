// Command benchdiff compares two benchmark reports cell by cell and
// fails on regressions. It understands the soak report (BENCH_soak.json,
// schema geographer-soak/v1), the chaos report (BENCH_chaos.json,
// schema geographer-chaos/v1), the serving report (BENCH_serve.json,
// schema geographer-serve/v1), the durability report
// (BENCH_durable.json, schema geographer-durable/v1), and the
// feature-space report (BENCH_highdim.json, schema
// geographer-highdim/v1), dispatching on the schema field.
//
//	benchdiff -old BENCH_soak.json -new /tmp/soak.json [-tol 0.10]
//	benchdiff -old BENCH_chaos.json -new /tmp/chaos.json
//	benchdiff -old BENCH_serve.json -new /tmp/serve.json
//	benchdiff -old BENCH_durable.json -new /tmp/durable.json
//	benchdiff -old BENCH_highdim.json -new /tmp/highdim.json
//
// Cells are matched by their configuration (soak: n/dim/k/p/steps;
// chaos: graph/n/k/p/steps; serve: tenants/n/k/p/steps/pool/budget;
// durable: tenants/n/k/p/steps; highdim: n/dim/m/k/p/steps).
// Deterministic metrics — for the soak the collective counts and bytes,
// barriers, distance evaluations, modeled communication time, and final
// imbalance; for the chaos run the fired fault count, recoveries, delay
// stalls, bit-identicality flag, distance evaluations, cut, and
// imbalance; for the serving run the bit-identical chain count,
// eviction/restore counts, distance evaluations, and verb count — are
// exact functions of the cell config, so any drift beyond the tolerance
// is a real behavioral change and exits non-zero. Wall-clock,
// throughput, and latency fields depend on the machine and are reported
// warn-only. Cells present in only one report are skipped with a note:
// committed snapshots may be generated at a different scale than the CI
// run diffing against them, so only the shared cells match.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"geographer/internal/experiments"
)

// metricVal is one named measurement of a cell; strict metrics fail the
// diff on drift, the rest only warn.
type metricVal struct {
	name   string
	strict bool
	v      float64
}

// cellData is the schema-independent shape the compare engine consumes.
type cellData struct {
	key     string
	metrics []metricVal
}

func soakCells(rep experiments.SoakReport) []cellData {
	out := make([]cellData, 0, len(rep.Cells))
	for _, c := range rep.Cells {
		out = append(out, cellData{
			key: fmt.Sprintf("n=%d dim=%d k=%d p=%d steps=%d", c.N, c.Dim, c.K, c.P, c.Steps),
			metrics: []metricVal{
				{"collectives", true, float64(c.Collectives)},
				{"collective_bytes", true, float64(c.CollectiveBytes)},
				{"barriers", true, float64(c.Barriers)},
				{"dist_calcs", true, float64(c.DistCalcs)},
				{"modeled_comm_sec", true, c.ModeledCommSec},
				{"imbalance", true, c.Imbalance},
				{"wall_sec", false, c.WallSec},
				{"step_sec_mean", false, c.StepSecMean},
				{"peak_rss_mb", false, c.PeakRSSMB},
				{"mallocs_per_step", false, c.MallocsPerStep},
			},
		})
	}
	return out
}

func serveCells(rep experiments.ServeReport) []cellData {
	out := make([]cellData, 0, len(rep.Cells))
	for _, c := range rep.Cells {
		out = append(out, cellData{
			key: fmt.Sprintf("tenants=%d n=%d k=%d p=%d steps=%d pool=%d budget=%d",
				c.Tenants, c.N, c.K, c.P, c.Steps, c.Pool, c.Budget),
			metrics: []metricVal{
				{"identical_chains", true, float64(c.IdenticalChains)},
				{"evictions", true, float64(c.Evictions)},
				{"restores", true, float64(c.Restores)},
				{"dist_calcs", true, float64(c.DistCalcs)},
				{"verbs", true, float64(c.Verbs)},
				{"wall_sec", false, c.WallSec},
				{"verbs_per_sec", false, c.VerbsPerSec},
				{"p50_ms", false, c.P50Ms},
				{"p95_ms", false, c.P95Ms},
				{"p99_ms", false, c.P99Ms},
			},
		})
	}
	return out
}

func durableCells(rep experiments.DurableReport) []cellData {
	out := make([]cellData, 0, len(rep.Cells))
	for _, c := range rep.Cells {
		out = append(out, cellData{
			key: fmt.Sprintf("tenants=%d n=%d k=%d p=%d steps=%d", c.Tenants, c.N, c.K, c.P, c.Steps),
			metrics: []metricVal{
				{"parks", true, float64(c.Parks)},
				{"restores", true, float64(c.Restores)},
				{"injected_torn", true, float64(c.InjectedTorn)},
				{"injected_flip", true, float64(c.InjectedFlip)},
				{"injected_delete", true, float64(c.InjectedDelete)},
				{"quarantined", true, float64(c.Quarantined)},
				{"lost_typed", true, float64(c.LostTyped)},
				{"survivor_chains", true, float64(c.SurvivorChains)},
				{"recovered", true, float64(c.Recovered)},
				{"recovered_chains", true, float64(c.RecoveredChains)},
				{"dist_calcs", true, float64(c.DistCalcs)},
				{"wall_sec", false, c.WallSec},
			},
		})
	}
	return out
}

func highdimCells(rep experiments.HighdimReport) []cellData {
	out := make([]cellData, 0, len(rep.Cells))
	for _, c := range rep.Cells {
		out = append(out, cellData{
			key: fmt.Sprintf("n=%d dim=%d m=%d k=%d p=%d steps=%d", c.N, c.Dim, c.M, c.K, c.P, c.Steps),
			metrics: []metricVal{
				{"collectives", true, float64(c.Collectives)},
				{"collective_bytes", true, float64(c.CollectiveBytes)},
				{"barriers", true, float64(c.Barriers)},
				{"dist_calcs", true, float64(c.DistCalcs)},
				{"chain_cut", true, float64(c.ChainCut)},
				{"imbalance", true, c.Imbalance},
				{"wall_sec", false, c.WallSec},
				{"cold_sec", false, c.ColdSec},
				{"step_sec_mean", false, c.StepSecMean},
				{"peak_rss_mb", false, c.PeakRSSMB},
			},
		})
	}
	return out
}

func chaosCells(rep experiments.ChaosReport) []cellData {
	out := make([]cellData, 0, len(rep.Cells))
	for _, c := range rep.Cells {
		identical := 0.0
		if c.Identical {
			identical = 1
		}
		out = append(out, cellData{
			key: fmt.Sprintf("graph=%s n=%d k=%d p=%d steps=%d", c.Graph, c.N, c.K, c.P, c.Steps),
			metrics: []metricVal{
				{"faults_scheduled", true, float64(c.FaultsScheduled)},
				{"faults_fired", true, float64(c.FaultsFired)},
				{"recoveries", true, float64(c.Recoveries)},
				{"delays", true, float64(c.Delays)},
				{"identical", true, identical},
				{"dist_calcs", true, float64(c.DistCalcs)},
				{"cut", true, float64(c.Cut)},
				{"imbalance", true, c.Imbalance},
				{"wall_sec", false, c.WallSec},
				{"ref_wall_sec", false, c.RefWallSec},
				{"wasted_sec", false, c.WastedSec},
			},
		})
	}
	return out
}

// relDelta returns |new-old| / |old|, treating old == 0 specially: any
// nonzero new value against a zero baseline counts as a full-size
// change.
func relDelta(oldV, newV float64) float64 {
	if oldV == newV {
		return 0
	}
	if oldV == 0 {
		return 1
	}
	d := (newV - oldV) / oldV
	if d < 0 {
		d = -d
	}
	return d
}

// loadCells reads a report, dispatches on its schema field, and returns
// the schema string plus the flattened cells.
func loadCells(path string) (string, []cellData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	switch head.Schema {
	case "geographer-soak/v1":
		var rep experiments.SoakReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", nil, fmt.Errorf("%s: %w", path, err)
		}
		return head.Schema, soakCells(rep), nil
	case "geographer-chaos/v1":
		var rep experiments.ChaosReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", nil, fmt.Errorf("%s: %w", path, err)
		}
		return head.Schema, chaosCells(rep), nil
	case "geographer-serve/v1":
		var rep experiments.ServeReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", nil, fmt.Errorf("%s: %w", path, err)
		}
		return head.Schema, serveCells(rep), nil
	case "geographer-durable/v1":
		var rep experiments.DurableReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", nil, fmt.Errorf("%s: %w", path, err)
		}
		return head.Schema, durableCells(rep), nil
	case "geographer-highdim/v1":
		var rep experiments.HighdimReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", nil, fmt.Errorf("%s: %w", path, err)
		}
		return head.Schema, highdimCells(rep), nil
	default:
		return "", nil, fmt.Errorf("%s: unknown report schema %q", path, head.Schema)
	}
}

func main() {
	var (
		oldPath = flag.String("old", "BENCH_soak.json", "committed baseline report")
		newPath = flag.String("new", "", "freshly generated report")
		tol     = flag.Float64("tol", 0.10, "relative tolerance on deterministic metrics")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	oldSchema, oldCells, err := loadCells(*oldPath)
	if err != nil {
		fatal(err)
	}
	newSchema, newCells, err := loadCells(*newPath)
	if err != nil {
		fatal(err)
	}
	if oldSchema != newSchema {
		fatal(fmt.Errorf("schema mismatch: %q vs %q", oldSchema, newSchema))
	}

	baseline := map[string]cellData{}
	for _, c := range oldCells {
		baseline[c.key] = c
	}

	matched, failures := 0, 0
	for _, nc := range newCells {
		oc, ok := baseline[nc.key]
		if !ok {
			fmt.Printf("cell %s: no baseline, skipped\n", nc.key)
			continue
		}
		matched++
		oldBy := map[string]metricVal{}
		for _, m := range oc.metrics {
			oldBy[m.name] = m
		}
		for _, m := range nc.metrics {
			om, ok := oldBy[m.name]
			if !ok {
				continue
			}
			d := relDelta(om.v, m.v)
			if d <= *tol {
				continue
			}
			if m.strict {
				failures++
				fmt.Printf("FAIL cell %s: %s %.6g -> %.6g (%+.1f%%)\n",
					nc.key, m.name, om.v, m.v, 100*(m.v-om.v)/om.v)
			} else {
				fmt.Printf("warn cell %s: %s %.6g -> %.6g (machine-dependent)\n",
					nc.key, m.name, om.v, m.v)
			}
		}
	}
	if matched == 0 {
		fatal(fmt.Errorf("no cells in %s match the baseline %s", *newPath, *oldPath))
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d deterministic metric(s) regressed beyond %.0f%%", failures, 100**tol))
	}
	fmt.Printf("ok: %d cell(s) matched, no deterministic regressions\n", matched)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
