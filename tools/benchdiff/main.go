// Command benchdiff compares two soak reports (BENCH_soak.json) cell by
// cell and fails on regressions.
//
//	benchdiff -old BENCH_soak.json -new /tmp/soak.json [-tol 0.10]
//
// Cells are matched by (n, dim, k, p, steps). Deterministic metrics —
// collective count and bytes, barrier count, distance evaluations,
// modeled communication time, final imbalance — are exact functions of
// the cell config, so any drift beyond the tolerance is a real
// behavioral change and exits non-zero. Wall time, peak RSS, and
// allocation counters depend on the machine and are reported warn-only.
// Cells present in only one report are skipped with a note: the
// committed snapshot is generated at default scale and CI diffs a
// quick-scale run against it, so only the shared quick cells match.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"geographer/internal/experiments"
)

type key struct{ n, dim, k, p, steps int }

func cellKey(c experiments.SoakCell) key {
	return key{c.N, c.Dim, c.K, c.P, c.Steps}
}

func load(path string) (experiments.SoakReport, error) {
	var rep experiments.SoakReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// relDelta returns |new-old| / |old|, treating old == 0 specially: any
// nonzero new value against a zero baseline counts as a full-size
// change.
func relDelta(oldV, newV float64) float64 {
	if oldV == newV {
		return 0
	}
	if oldV == 0 {
		return 1
	}
	d := (newV - oldV) / oldV
	if d < 0 {
		d = -d
	}
	return d
}

func main() {
	var (
		oldPath = flag.String("old", "BENCH_soak.json", "committed baseline report")
		newPath = flag.String("new", "", "freshly generated report")
		tol     = flag.Float64("tol", 0.10, "relative tolerance on deterministic metrics")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	oldRep, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	if oldRep.Schema != newRep.Schema {
		fatal(fmt.Errorf("schema mismatch: %q vs %q", oldRep.Schema, newRep.Schema))
	}

	oldCells := map[key]experiments.SoakCell{}
	for _, c := range oldRep.Cells {
		oldCells[cellKey(c)] = c
	}

	type metric struct {
		name   string
		strict bool
		get    func(experiments.SoakCell) float64
	}
	metrics := []metric{
		{"collectives", true, func(c experiments.SoakCell) float64 { return float64(c.Collectives) }},
		{"collective_bytes", true, func(c experiments.SoakCell) float64 { return float64(c.CollectiveBytes) }},
		{"barriers", true, func(c experiments.SoakCell) float64 { return float64(c.Barriers) }},
		{"dist_calcs", true, func(c experiments.SoakCell) float64 { return float64(c.DistCalcs) }},
		{"modeled_comm_sec", true, func(c experiments.SoakCell) float64 { return c.ModeledCommSec }},
		{"imbalance", true, func(c experiments.SoakCell) float64 { return c.Imbalance }},
		{"wall_sec", false, func(c experiments.SoakCell) float64 { return c.WallSec }},
		{"step_sec_mean", false, func(c experiments.SoakCell) float64 { return c.StepSecMean }},
		{"peak_rss_mb", false, func(c experiments.SoakCell) float64 { return c.PeakRSSMB }},
		{"mallocs_per_step", false, func(c experiments.SoakCell) float64 { return c.MallocsPerStep }},
	}

	matched, failures := 0, 0
	for _, nc := range newRep.Cells {
		oc, ok := oldCells[cellKey(nc)]
		if !ok {
			fmt.Printf("cell n=%d k=%d p=%d: no baseline, skipped\n", nc.N, nc.K, nc.P)
			continue
		}
		matched++
		for _, m := range metrics {
			oldV, newV := m.get(oc), m.get(nc)
			d := relDelta(oldV, newV)
			if d <= *tol {
				continue
			}
			if m.strict {
				failures++
				fmt.Printf("FAIL cell n=%d k=%d p=%d: %s %.6g -> %.6g (%+.1f%%)\n",
					nc.N, nc.K, nc.P, m.name, oldV, newV, 100*(newV-oldV)/oldV)
			} else {
				fmt.Printf("warn cell n=%d k=%d p=%d: %s %.6g -> %.6g (machine-dependent)\n",
					nc.N, nc.K, nc.P, m.name, oldV, newV)
			}
		}
	}
	if matched == 0 {
		fatal(fmt.Errorf("no cells in %s match the baseline %s", *newPath, *oldPath))
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d deterministic metric(s) regressed beyond %.0f%%", failures, 100**tol))
	}
	fmt.Printf("ok: %d cell(s) matched, no deterministic regressions\n", matched)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
